//! Durability integration tests: write-ahead journalling, snapshot +
//! replay recovery, kill-during-commit healing, and gap-free
//! revocation catch-up from the bus's retained ring.

use std::sync::Arc;

use oasis_core::{
    Atom, CredStatus, EnvContext, OasisService, PrincipalId, RoleName, SecurityEvent,
    ServiceConfig, ServiceJournal, Term, Value, ValueType,
};
use oasis_events::EventBus;
use oasis_facts::FactStore;
use oasis_store::MemBackend;

fn alice() -> PrincipalId {
    PrincipalId::new("alice")
}

/// A login-style service with one initial role, built over `journal`.
fn durable_login(journal: ServiceJournal) -> Arc<OasisService> {
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let svc = OasisService::new(ServiceConfig::new("login").with_journal(journal), facts);
    install_login_policy(&svc);
    svc
}

fn install_login_policy(svc: &OasisService) {
    svc.define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    svc.add_activation_rule(
        "logged_in",
        vec![Term::var("U")],
        vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
        vec![],
    )
    .unwrap();
}

fn mem_store() -> (ServiceJournal, MemBackend, MemBackend) {
    let journal = MemBackend::new();
    let snapshot = MemBackend::new();
    let store =
        ServiceJournal::open(Arc::new(journal.clone()), Arc::new(snapshot.clone())).unwrap();
    (store, journal, snapshot)
}

fn reopen(journal: &MemBackend, snapshot: &MemBackend) -> ServiceJournal {
    ServiceJournal::open(Arc::new(journal.clone()), Arc::new(snapshot.clone())).unwrap()
}

#[test]
fn issue_and_revoke_survive_a_restart() {
    let (store, jb, sb) = mem_store();
    let ctx = EnvContext::new(1);
    let crr_keep;
    let crr_gone;
    {
        let svc = durable_login(store);
        crr_keep = svc
            .activate_role(
                &alice(),
                &RoleName::new("logged_in"),
                &[Value::id("alice")],
                &[],
                &ctx,
            )
            .unwrap()
            .crr;
        let rmc2 = svc
            .activate_role(
                &alice(),
                &RoleName::new("logged_in"),
                &[Value::id("alice")],
                &[],
                &ctx,
            )
            .unwrap();
        crr_gone = rmc2.crr.clone();
        assert!(svc.revoke_certificate(crr_gone.cert_id, "logout", 2));
        // Service dropped here: all in-memory state is lost.
    }

    let svc = durable_login(reopen(&jb, &sb));
    assert_eq!(svc.record_stats(), (0, 0, 0), "fresh instance starts empty");
    let report = svc.recover(3).unwrap();
    assert_eq!(report.records_restored, 2);
    assert_eq!(report.revocations_replayed, 1);
    assert!(report.catchup_required);
    assert_eq!(svc.record_stats(), (1, 1, 0));
    assert!(svc.record(crr_keep.cert_id).unwrap().status.is_active());
    assert!(matches!(
        svc.record(crr_gone.cert_id).unwrap().status,
        CredStatus::Revoked { .. }
    ));

    // The next certificate id must not collide with recovered ones.
    let rmc3 = svc
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &ctx,
        )
        .unwrap();
    assert!(rmc3.crr.cert_id.0 > crr_keep.cert_id.0.max(crr_gone.cert_id.0));
}

#[test]
fn kill_during_commit_is_healed_by_replay() {
    let (store, jb, sb) = mem_store();
    let ctx = EnvContext::new(1);
    {
        let svc = durable_login(store);
        // Crash between the journal append and the in-memory apply: the
        // issuance fails from the caller's point of view...
        assert!(svc.chaos_arm_crash_after_journal());
        let err = svc
            .activate_role(
                &alice(),
                &RoleName::new("logged_in"),
                &[Value::id("alice")],
                &[],
                &ctx,
            )
            .unwrap_err();
        assert!(err.to_string().contains("chaos"));
        assert_eq!(svc.record_stats(), (0, 0, 0));
    }

    // ...but the journal has the record, and recovery replays it. No
    // double-issue: exactly one record, and fresh ids skip past it.
    let svc = durable_login(reopen(&jb, &sb));
    let report = svc.recover(2).unwrap();
    assert_eq!(report.records_restored, 1);
    assert_eq!(svc.record_stats(), (1, 0, 0));
}

#[test]
fn snapshot_truncates_and_recovery_uses_it() {
    let (store, jb, sb) = mem_store();
    let ctx = EnvContext::new(1);
    {
        let svc = durable_login(store);
        for _ in 0..10 {
            svc.activate_role(
                &alice(),
                &RoleName::new("logged_in"),
                &[Value::id("alice")],
                &[],
                &ctx,
            )
            .unwrap();
        }
        let truncated = svc.snapshot().unwrap();
        assert_eq!(truncated, 10, "all ten issue events subsumed");
        // Two more after the snapshot stay in the journal.
        svc.activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &ctx,
        )
        .unwrap();
        svc.activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &ctx,
        )
        .unwrap();
    }

    let svc = durable_login(reopen(&jb, &sb));
    let report = svc.recover(2).unwrap();
    assert_eq!(report.snapshot_covered_seq, 10);
    assert!(!report.snapshot_corrupt);
    assert_eq!(report.events_replayed, 2);
    assert_eq!(report.records_restored, 12);
    assert_eq!(svc.record_stats(), (12, 0, 0));
}

#[test]
fn auto_snapshot_kicks_in_at_the_configured_cadence() {
    let journal = MemBackend::new();
    let snapshot = MemBackend::new();
    let store =
        ServiceJournal::open(Arc::new(journal.clone()), Arc::new(snapshot.clone())).unwrap();
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let svc = OasisService::new(
        ServiceConfig::new("login")
            .with_journal(store)
            .with_snapshot_every(4),
        facts,
    );
    install_login_policy(&svc);
    let ctx = EnvContext::new(1);
    for _ in 0..9 {
        svc.activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &ctx,
        )
        .unwrap();
    }
    assert!(
        !snapshot.is_empty(),
        "a snapshot must have been written automatically"
    );
    let stats = svc.journal_stats().unwrap();
    assert!(stats.truncated_records > 0);
}

#[test]
fn catch_up_applies_revocations_published_while_down() {
    // Login (the issuer) publishes on a bus that retains its revocation
    // topic; hospital journals which events it has applied.
    let bus: EventBus<oasis_core::CertEvent> = EventBus::new();
    let login_facts = Arc::new(FactStore::new());
    login_facts.define("password_ok", 1).unwrap();
    login_facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let login = OasisService::new(
        ServiceConfig::new("login")
            .with_bus(bus.clone())
            .with_revocation_retention(64),
        Arc::clone(&login_facts),
    );
    install_login_policy(&login);
    let ctx = EnvContext::new(1);
    let login_rmc = login
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &ctx,
        )
        .unwrap();

    let hb = MemBackend::new();
    let hs = MemBackend::new();
    let hospital_store = ServiceJournal::open(Arc::new(hb.clone()), Arc::new(hs.clone())).unwrap();
    let hospital_crr;
    {
        let hospital = OasisService::new(
            ServiceConfig::new("hospital")
                .with_bus(bus.clone())
                .with_validation_cache(1_000)
                .with_journal(hospital_store),
            Arc::new(FactStore::new()),
        );
        let registry = Arc::new(oasis_core::LocalRegistry::new());
        registry.register(&login);
        hospital.set_validator(registry);
        hospital
            .define_role("doctor", &[("user", ValueType::Id)], false)
            .unwrap();
        hospital
            .add_activation_rule(
                "doctor",
                vec![Term::var("U")],
                vec![Atom::prereq_at("login", "logged_in", vec![Term::var("U")])],
                vec![0],
            )
            .unwrap();
        hospital_crr = hospital
            .activate_role(
                &alice(),
                &RoleName::new("doctor"),
                &[Value::id("alice")],
                &[oasis_core::Credential::Rmc(login_rmc.clone())],
                &ctx,
            )
            .unwrap()
            .crr;
        assert!(hospital
            .record(hospital_crr.cert_id)
            .unwrap()
            .status
            .is_active());
        // Hospital crashes here (dropped): its bus subscription dies
        // with it.
    }

    // While the hospital is down, the login session ends: the
    // revocation is published, retained in the ring, and delivered to
    // no one.
    assert!(login.revoke_certificate(login_rmc.crr.cert_id, "logged out", 5));

    // Restart the hospital from its journal and catch up on the gap.
    let hospital = OasisService::new(
        ServiceConfig::new("hospital")
            .with_bus(bus.clone())
            .with_validation_cache(1_000)
            .with_journal(
                ServiceJournal::open(Arc::new(hb.clone()), Arc::new(hs.clone())).unwrap(),
            ),
        Arc::new(FactStore::new()),
    );
    let report = hospital.recover(6).unwrap();
    assert!(report.catchup_required);
    assert!(hospital.catchup_pending());
    assert!(hospital
        .record(hospital_crr.cert_id)
        .unwrap()
        .status
        .is_active());

    let catchup = hospital.catch_up(&bus, "cred.revoked.login", 7);
    assert!(catchup.complete, "ring retained the whole gap");
    assert_eq!(catchup.applied, 1);
    assert!(!hospital.catchup_pending());
    // The dependent doctor role collapsed before any new grant.
    assert!(matches!(
        hospital.record(hospital_crr.cert_id).unwrap().status,
        CredStatus::Revoked { .. }
    ));

    // A second catch-up is a no-op: the watermark already covers it.
    let again = hospital.catch_up(&bus, "cred.revoked.login", 8);
    assert_eq!(again.applied, 0);
    assert!(again.complete);
}

#[test]
fn recovered_publisher_serves_gap_free_catch_up_from_restored_ring() {
    // The *publisher* crashes after revoking: its retained ring — the
    // thing subscribers catch up from — must be rebuilt from the
    // journal with the original sequence numbers, even on a brand-new
    // bus (the failed-over-replica case).
    let (store, jb, sb) = mem_store();
    let bus: EventBus<oasis_core::CertEvent> = EventBus::new();
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let ctx = EnvContext::new(1);
    let mut revoked = Vec::new();
    {
        let login = OasisService::new(
            ServiceConfig::new("login")
                .with_bus(bus)
                .with_revocation_retention(64)
                .with_journal(store),
            Arc::clone(&facts),
        );
        install_login_policy(&login);
        for i in 0..4 {
            let rmc = login
                .activate_role(
                    &alice(),
                    &RoleName::new("logged_in"),
                    &[Value::id("alice")],
                    &[],
                    &ctx,
                )
                .unwrap();
            if i % 2 == 0 {
                assert!(login.revoke_certificate(rmc.crr.cert_id, "logout", 2 + i));
                revoked.push(rmc.crr);
            }
        }
        // Publisher crashes here; the old bus (and its ring) dies too.
    }

    let fresh_bus: EventBus<oasis_core::CertEvent> = EventBus::new();
    let login = OasisService::new(
        ServiceConfig::new("login")
            .with_bus(fresh_bus.clone())
            .with_revocation_retention(64)
            .with_journal(reopen(&jb, &sb)),
        facts,
    );
    install_login_policy(&login);
    let report = login.recover(10).unwrap();
    assert_eq!(report.retained_restored, 2, "both publications restored");

    // A subscriber that had applied nothing asks for everything after 0:
    // the replay must be gap-free with the original numbering.
    let (events, complete) = login.replay_retained("cred.revoked.login", 0);
    assert!(complete, "restored ring has no gaps");
    assert_eq!(events.len(), 2);
    assert_eq!(
        events.iter().map(|e| e.topic_seq).collect::<Vec<_>>(),
        vec![1, 2]
    );
    assert_eq!(
        events
            .iter()
            .map(|e| e.payload.crr.clone())
            .collect::<Vec<_>>(),
        revoked
    );

    // New publications continue the sequence instead of colliding.
    let rmc = login
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &ctx,
        )
        .unwrap();
    assert!(login.revoke_certificate(rmc.crr.cert_id, "logout", 11));
    let (events, complete) = login.replay_retained("cred.revoked.login", 2);
    assert!(complete);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].topic_seq, 3);

    // Snapshot subsumes the ring: a second recovery from the snapshot
    // alone restores all three entries.
    login.snapshot().unwrap();
    let login2 = OasisService::new(
        ServiceConfig::new("login")
            .with_bus(EventBus::new())
            .with_revocation_retention(64)
            .with_journal(reopen(&jb, &sb)),
        Arc::new(FactStore::new()),
    );
    let report = login2.recover(12).unwrap();
    assert_eq!(report.retained_restored, 3);
    let (events, complete) = login2.replay_retained("cred.revoked.login", 0);
    assert!(complete);
    assert_eq!(events.len(), 3);
}

#[test]
fn journal_append_failure_aborts_issuance() {
    // A store whose journal backend rejects appends after poisoning.
    let jb = MemBackend::new();
    let sb = MemBackend::new();
    let store = ServiceJournal::open(Arc::new(jb.clone()), Arc::new(sb)).unwrap();
    let svc = durable_login(store);
    let ctx = EnvContext::new(1);
    svc.activate_role(
        &alice(),
        &RoleName::new("logged_in"),
        &[Value::id("alice")],
        &[],
        &ctx,
    )
    .unwrap();
    jb.poison("disk full");
    let err = svc
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &ctx,
        )
        .unwrap_err();
    assert!(matches!(err, oasis_core::OasisError::Journal(_)), "{err}");
    // But revocation still proceeds in memory even though the journal
    // is broken — safety over durability.
    let records = svc.active_records();
    assert!(svc.revoke_certificate(records[0].crr.cert_id, "logout", 2));
    assert_eq!(svc.record_stats().0, 0);
}

#[test]
fn recovery_without_a_journal_is_a_noop() {
    let facts = Arc::new(FactStore::new());
    let svc = OasisService::new(ServiceConfig::new("plain"), facts);
    let report = svc.recover(1).unwrap();
    assert_eq!(report, oasis_core::RecoveryReport::default());
    assert!(!svc.catchup_pending());
    assert!(svc.journal_stats().is_none());
}

#[test]
fn epoch_rotation_is_journalled() {
    let (store, jb, sb) = mem_store();
    let svc = durable_login(store);
    let epoch = svc.rotate_secret(4);
    assert!(epoch.0 > 0);
    drop(svc);
    let store = reopen(&jb, &sb);
    let recovered = store.load().unwrap();
    assert!(recovered.events.iter().any(
        |(_, e)| matches!(e, SecurityEvent::EpochChanged { epoch: ep, at: 4 } if *ep == epoch.0)
    ));
}
