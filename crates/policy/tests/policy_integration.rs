//! End-to-end: parse a policy document, install it on live services, and
//! exercise the resulting access control behaviour.

use std::sync::Arc;

use oasis_core::{
    Credential, EnvContext, LocalRegistry, OasisService, PrincipalId, RoleName, ServiceConfig,
    Value,
};
use oasis_events::EventBus;
use oasis_facts::FactStore;
use oasis_policy::{Policy, PolicyError};

const HOSPITAL_POLICY: &str = r#"
# The hospital policy from the paper's running example.
service login {
  initial role logged_in(user: id);
  rule logged_in(U) <- env password_ok(U);
}

service hospital {
  role doctor_on_duty(doctor: id);
  role treating_doctor(doctor: id, patient: id);
  appointment assigned(doctor: id, patient: id);
  appointer doctor_on_duty may issue assigned;

  rule doctor_on_duty(D) <- prereq login::logged_in(D);

  rule treating_doctor(D, P) <-
      prereq doctor_on_duty(D),
      appointment assigned(D, P),
      env not excluded(P, D);

  invoke read_record(P) <- prereq treating_doctor(_, P);
}
"#;

struct World {
    facts: Arc<FactStore<Value>>,
    login: Arc<OasisService>,
    hospital: Arc<OasisService>,
}

fn build_world() -> World {
    let policy = Policy::parse(HOSPITAL_POLICY).unwrap();
    assert_eq!(
        policy.service_names(),
        vec!["login".to_string(), "hospital".to_string()]
    );

    let facts = Arc::new(FactStore::new());
    let bus = EventBus::new();
    let login = OasisService::new(
        ServiceConfig::new("login").with_bus(bus.clone()),
        Arc::clone(&facts),
    );
    let hospital = OasisService::new(
        ServiceConfig::new("hospital").with_bus(bus.clone()),
        Arc::clone(&facts),
    );
    policy.apply_to(&login).unwrap();
    policy.apply_to(&hospital).unwrap();

    let registry = Arc::new(LocalRegistry::new());
    registry.register(&login);
    registry.register(&hospital);
    login.set_validator(registry.clone());
    hospital.set_validator(registry);

    World {
        facts,
        login,
        hospital,
    }
}

#[test]
fn apply_declares_referenced_relations() {
    let world = build_world();
    // password_ok and excluded are declared by the policy compiler.
    assert!(world.facts.len("password_ok").unwrap() == 0);
    assert!(world.facts.len("excluded").unwrap() == 0);
}

#[test]
fn policy_driven_hospital_scenario() {
    let world = build_world();
    let dr = PrincipalId::new("dr-jones");
    let ctx = EnvContext::new(0);

    world
        .facts
        .insert("password_ok", vec![Value::id("dr-jones")])
        .unwrap();

    let login_rmc = world
        .login
        .activate_role(
            &dr,
            &RoleName::new("logged_in"),
            &[Value::id("dr-jones")],
            &[],
            &ctx,
        )
        .unwrap();

    let duty_rmc = world
        .hospital
        .activate_role(
            &dr,
            &RoleName::new("doctor_on_duty"),
            &[Value::id("dr-jones")],
            &[Credential::Rmc(login_rmc)],
            &ctx,
        )
        .unwrap();

    // The screening nurse scenario: the on-duty doctor may issue the
    // `assigned` appointment (granted by the policy's appointer clause) —
    // here the doctor self-assigns for brevity.
    let assignment = world
        .hospital
        .issue_appointment(
            &dr,
            &[Credential::Rmc(duty_rmc.clone())],
            "assigned",
            vec![Value::id("dr-jones"), Value::id("pat-1")],
            &dr,
            None,
            None,
            &ctx,
        )
        .unwrap();

    let treating = world
        .hospital
        .activate_role(
            &dr,
            &RoleName::new("treating_doctor"),
            &[Value::id("dr-jones"), Value::id("pat-1")],
            &[
                Credential::Rmc(duty_rmc),
                Credential::Appointment(assignment),
            ],
            &ctx,
        )
        .unwrap();

    // Invocation gated on the parametrised role.
    assert!(world
        .hospital
        .invoke(
            &dr,
            "read_record",
            &[Value::id("pat-1")],
            &[Credential::Rmc(treating.clone())],
            &ctx,
        )
        .is_ok());
    assert!(world
        .hospital
        .invoke(
            &dr,
            "read_record",
            &[Value::id("pat-2")],
            &[Credential::Rmc(treating.clone())],
            &ctx,
        )
        .is_err());

    // Patient exclusion deactivates the role immediately (default
    // membership retains the negated exclusion condition).
    world
        .facts
        .insert("excluded", vec![Value::id("pat-1"), Value::id("dr-jones")])
        .unwrap();
    assert!(world
        .hospital
        .invoke(
            &dr,
            "read_record",
            &[Value::id("pat-1")],
            &[Credential::Rmc(treating)],
            &ctx,
        )
        .is_err());
}

#[test]
fn apply_to_unknown_service_fails() {
    let policy = Policy::parse(HOSPITAL_POLICY).unwrap();
    let facts = Arc::new(FactStore::new());
    let other = OasisService::new(ServiceConfig::new("pharmacy"), facts);
    assert!(matches!(
        policy.apply_to(&other),
        Err(PolicyError::NoSuchService(_))
    ));
}

#[test]
fn parse_errors_carry_positions() {
    let err = Policy::parse("service s {\n  role broken(\n}").unwrap_err();
    let text = err.to_string();
    assert!(text.contains("3:1") || text.contains("2:"), "got: {text}");
}

#[test]
fn canonical_text_reparses_to_same_ast() {
    let policy = Policy::parse(HOSPITAL_POLICY).unwrap();
    let printed = policy.to_text();
    let reparsed = Policy::parse(&printed).unwrap();
    assert_eq!(policy.ast().normalized(), reparsed.ast().normalized());
    // And printing again is a fixed point.
    assert_eq!(printed, reparsed.to_text());
}
