//! Minimal replacement for `rand_chacha`: a genuine ChaCha8 keystream
//! generator implementing the rand shim's [`RngCore`]/[`SeedableRng`].
//! Stream layout differs from upstream rand_chacha (the workspace only
//! needs seeded determinism, not cross-crate bit compatibility).

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Deterministic seeded generator backed by the ChaCha stream cipher with
/// 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14..16 are the nonce, fixed at zero for this use.
        let mut working = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, orig) in working.iter_mut().zip(state.iter()) {
            *out = out.wrapping_add(*orig);
        }
        self.buffer = working;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..(i + 1) * 4].try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn keystream_is_balanced() {
        // Crude sanity check on the keystream: bit population should be
        // near 50% over a few thousand words.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u64;
        const WORDS: u64 = 4096;
        for _ in 0..WORDS {
            ones += rng.next_u64().count_ones() as u64;
        }
        let frac = ones as f64 / (WORDS * 64) as f64;
        assert!((0.48..0.52).contains(&frac), "bit fraction {frac}");
    }
}
