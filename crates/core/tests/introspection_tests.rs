//! Tests of the operator-facing introspection surface: role listings,
//! rule listings, and policy consistency warnings.

use std::sync::Arc;

use oasis_core::{Atom, OasisService, RoleName, ServiceConfig, Term, ValueType};
use oasis_facts::FactStore;

fn service() -> Arc<OasisService> {
    OasisService::new(ServiceConfig::new("svc"), Arc::new(FactStore::new()))
}

#[test]
fn roles_and_rules_listings() {
    let svc = service();
    svc.define_role("zeta", &[], false).unwrap();
    svc.define_role("alpha", &[("x", ValueType::Id)], true)
        .unwrap();
    let r1 = svc
        .add_activation_rule("alpha", vec![Term::var("X")], vec![], vec![])
        .unwrap();
    let r2 = svc
        .add_activation_rule(
            "zeta",
            vec![],
            vec![Atom::prereq("alpha", vec![Term::Wildcard])],
            vec![0],
        )
        .unwrap();
    let i1 = svc.add_invocation_rule("go", vec![], vec![]);

    let roles = svc.roles();
    assert_eq!(roles.len(), 2);
    assert_eq!(roles[0].name().as_str(), "alpha", "sorted by name");
    assert_eq!(roles[1].name().as_str(), "zeta");

    assert_eq!(svc.activation_rules(&RoleName::new("alpha"))[0].id, r1);
    assert_eq!(svc.activation_rules(&RoleName::new("zeta"))[0].id, r2);
    assert!(svc.activation_rules(&RoleName::new("ghost")).is_empty());
    assert_eq!(svc.invocation_rules("go")[0].id, i1);
    assert!(svc.invocation_rules("stop").is_empty());
}

#[test]
fn consistent_policy_has_no_warnings() {
    let svc = service();
    svc.define_role("login", &[], true).unwrap();
    svc.add_activation_rule("login", vec![], vec![], vec![])
        .unwrap();
    svc.define_role("inner", &[], false).unwrap();
    svc.add_activation_rule(
        "inner",
        vec![],
        vec![Atom::prereq("login", vec![])],
        vec![0],
    )
    .unwrap();
    assert!(
        svc.policy_warnings().is_empty(),
        "{:?}",
        svc.policy_warnings()
    );
}

#[test]
fn ruleless_role_flagged() {
    let svc = service();
    svc.define_role("orphan", &[], false).unwrap();
    let warnings = svc.policy_warnings();
    assert_eq!(warnings.len(), 1);
    assert!(warnings[0].contains("orphan"));
    assert!(warnings[0].contains("never be activated"));
}

#[test]
fn unflagged_session_starter_flagged() {
    let svc = service();
    svc.define_role("sneaky", &[], false).unwrap();
    svc.add_activation_rule("sneaky", vec![], vec![], vec![])
        .unwrap();
    let warnings = svc.policy_warnings();
    assert_eq!(warnings.len(), 1);
    assert!(warnings[0].contains("not flagged initial"));
}

#[test]
fn appointment_only_rule_counts_as_session_starter() {
    // A rule gated on an appointment certificate (no prerequisite role)
    // still starts a session — paper Sect. 2's visiting-doctor pattern.
    let svc = service();
    svc.define_role("visitor", &[], true).unwrap();
    svc.add_activation_rule(
        "visitor",
        vec![],
        vec![Atom::appointment_from("home", "employed", vec![])],
        vec![0],
    )
    .unwrap();
    assert!(svc.policy_warnings().is_empty());
}

#[test]
fn initial_role_that_cannot_start_session_flagged() {
    let svc = service();
    svc.define_role("base", &[], true).unwrap();
    svc.add_activation_rule("base", vec![], vec![], vec![])
        .unwrap();
    svc.define_role("fake_initial", &[], true).unwrap();
    svc.add_activation_rule(
        "fake_initial",
        vec![],
        vec![Atom::prereq("base", vec![])],
        vec![0],
    )
    .unwrap();
    let warnings = svc.policy_warnings();
    assert_eq!(warnings.len(), 1);
    assert!(warnings[0].contains("fake_initial"));
    assert!(warnings[0].contains("cannot start a session"));
}

#[test]
fn mixed_rules_make_initial_consistent() {
    // A role with one prereq-free rule and one prereq rule is a valid
    // initial role (either path works; one starts sessions).
    let svc = service();
    svc.define_role("base", &[], true).unwrap();
    svc.add_activation_rule("base", vec![], vec![], vec![])
        .unwrap();
    svc.define_role("either", &[], true).unwrap();
    svc.add_activation_rule("either", vec![], vec![], vec![])
        .unwrap();
    svc.add_activation_rule(
        "either",
        vec![],
        vec![Atom::prereq("base", vec![])],
        vec![0],
    )
    .unwrap();
    assert!(svc.policy_warnings().is_empty());
}
