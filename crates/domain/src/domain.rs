//! An administrative domain: a named group of services sharing an event
//! bus, a fact store, and a CIV service.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use oasis_core::{CertEvent, DomainId, OasisService, ServiceConfig, ServiceId, Value};
use oasis_events::EventBus;
use oasis_facts::FactStore;

use crate::civ::CivService;

/// An administrative domain (a hospital, a research institute, the
/// national EHR service…).
///
/// All services of a domain share one fact store (the domain's
/// environmental database) and one event bus. The bus may also be shared
/// *across* domains — that sharing is the stand-in for the wide-area
/// event channels of Fig 5.
pub struct Domain {
    id: DomainId,
    bus: EventBus<CertEvent>,
    facts: Arc<FactStore<Value>>,
    services: RwLock<HashMap<ServiceId, Arc<OasisService>>>,
    civ: Arc<CivService>,
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Domain")
            .field("id", &self.id)
            .field("services", &self.service_ids())
            .finish()
    }
}

impl Domain {
    /// Creates a domain on the given (possibly shared) event bus, with a
    /// CIV service of replication factor 3.
    pub fn new(id: impl Into<DomainId>, bus: EventBus<CertEvent>) -> Arc<Self> {
        Self::with_replication(id, bus, 3)
    }

    /// Creates a domain whose CIV service runs `replicas` replicas.
    pub fn with_replication(
        id: impl Into<DomainId>,
        bus: EventBus<CertEvent>,
        replicas: usize,
    ) -> Arc<Self> {
        let id = id.into();
        let civ = CivService::new(id.clone(), &bus, replicas);
        Arc::new(Self {
            id,
            bus,
            facts: Arc::new(FactStore::new()),
            services: RwLock::new(HashMap::new()),
            civ,
        })
    }

    /// The domain's identity.
    pub fn id(&self) -> &DomainId {
        &self.id
    }

    /// The domain's event bus.
    pub fn bus(&self) -> &EventBus<CertEvent> {
        &self.bus
    }

    /// The domain's environmental fact store, shared by its services.
    pub fn facts(&self) -> &Arc<FactStore<Value>> {
        &self.facts
    }

    /// The domain's certificate issuing and validation service.
    pub fn civ(&self) -> &Arc<CivService> {
        &self.civ
    }

    /// Creates a service inside this domain: it shares the domain bus and
    /// fact store and is registered with the CIV service.
    pub fn create_service(&self, name: impl Into<ServiceId>) -> Arc<OasisService> {
        let name = name.into();
        let service = OasisService::new(
            ServiceConfig::new(name.clone()).with_bus(self.bus.clone()),
            Arc::clone(&self.facts),
        );
        self.civ.register_issuer(&service);
        self.services.write().insert(name, Arc::clone(&service));
        service
    }

    /// Looks up a service by id.
    pub fn service(&self, id: &ServiceId) -> Option<Arc<OasisService>> {
        self.services.read().get(id).cloned()
    }

    /// Ids of the domain's services, sorted.
    pub fn service_ids(&self) -> Vec<ServiceId> {
        let mut ids: Vec<ServiceId> = self.services.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Whether the given service belongs to this domain.
    pub fn owns(&self, id: &ServiceId) -> bool {
        self.services.read().contains_key(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_service_registers_everything() {
        let bus = EventBus::new();
        let domain = Domain::new("hospital", bus);
        let svc = domain.create_service("records");
        assert!(domain.owns(svc.id()));
        assert_eq!(domain.service_ids(), vec![ServiceId::new("records")]);
        assert!(domain.service(&ServiceId::new("records")).is_some());
        assert!(domain.service(&ServiceId::new("ghost")).is_none());
    }

    #[test]
    fn services_share_the_domain_fact_store() {
        let domain = Domain::new("d", EventBus::new());
        let a = domain.create_service("a");
        let b = domain.create_service("b");
        a.facts().define("shared", 1).unwrap();
        assert!(b.facts().len("shared").is_ok());
        assert!(Arc::ptr_eq(domain.facts(), a.facts()));
        assert!(Arc::ptr_eq(a.facts(), b.facts()));
    }
}
