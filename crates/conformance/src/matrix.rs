//! The conformance matrix: the full workload × fault × topology product
//! this repository commits to keeping green.

use crate::scenario::{Category, FaultRegime, Scenario, Topology, Workload};

/// Workloads available on the two-domain topology.
pub const TWO_DOMAIN_WORKLOADS: [Workload; 5] = [
    Workload::Quiet,
    Workload::Steady,
    Workload::ValidationFlood,
    Workload::RevocationStorm,
    Workload::FloodAndStorm,
];

/// Fault regimes available on the two-domain topology.
pub const TWO_DOMAIN_FAULTS: [FaultRegime; 7] = [
    FaultRegime::None,
    FaultRegime::IssuerOutage,
    FaultRegime::FlappingIssuer,
    FaultRegime::PartitionWindow,
    FaultRegime::ClockSkewAhead,
    FaultRegime::ClockSkewBehind,
    FaultRegime::ByzantineCiv,
];

/// Workloads available on the replicated-CIV topology (`Steady` is the
/// spaced trickle, `RevocationStorm` the back-to-back storm).
pub const REPLICATED_WORKLOADS: [Workload; 2] = [Workload::Steady, Workload::RevocationStorm];

/// Fault regimes available on the replicated-CIV topology.
pub const REPLICATED_FAULTS: [FaultRegime; 8] = [
    FaultRegime::None,
    FaultRegime::KillLeader,
    FaultRegime::KillLeaderTwice,
    FaultRegime::SubscriberCrashMidCatchup,
    FaultRegime::IsolateLeader,
    FaultRegime::FlappyLinkRepair,
    FaultRegime::MidSyncLinkDrop,
    FaultRegime::IsolatedNodeTermStorm,
];

/// The full matrix, in a fixed, stable order (topology-major, then
/// workload, then fault). 51 cells: 35 two-domain + 16 replicated.
pub fn full_matrix() -> Vec<Scenario> {
    let mut cells = Vec::new();
    for workload in TWO_DOMAIN_WORKLOADS {
        for fault in TWO_DOMAIN_FAULTS {
            cells.push(Scenario::new(Topology::TwoDomain, workload, fault));
        }
    }
    for workload in REPLICATED_WORKLOADS {
        for fault in REPLICATED_FAULTS {
            cells.push(Scenario::new(Topology::ReplicatedCiv3, workload, fault));
        }
    }
    cells
}

/// Coverage summary over a set of cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Total cells.
    pub total: usize,
    /// Cells outside [`Category::HappyPath`].
    pub non_happy: usize,
}

impl Coverage {
    /// Non-happy-path share in percent (0 when the set is empty).
    pub fn non_happy_percent(&self) -> usize {
        (self.non_happy * 100).checked_div(self.total).unwrap_or(0)
    }
}

/// Computes the coverage summary of a cell set.
pub fn coverage(cells: &[Scenario]) -> Coverage {
    Coverage {
        total: cells.len(),
        non_happy: cells.iter().filter(|c| !c.is_happy_path()).count(),
    }
}

/// Cells in a given category, in matrix order.
pub fn cells_in(cells: &[Scenario], category: Category) -> Vec<Scenario> {
    cells
        .iter()
        .copied()
        .filter(|c| c.category() == category)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn matrix_meets_the_issue_floor() {
        let cells = full_matrix();
        assert!(
            cells.len() >= 30,
            "matrix has {} cells, need >= 30",
            cells.len()
        );
        let cov = coverage(&cells);
        assert!(
            cov.non_happy_percent() >= 30,
            "only {}% non-happy-path, need >= 30%",
            cov.non_happy_percent()
        );
    }

    #[test]
    fn matrix_is_exactly_the_axis_product() {
        let cells = full_matrix();
        assert_eq!(
            cells.len(),
            TWO_DOMAIN_WORKLOADS.len() * TWO_DOMAIN_FAULTS.len()
                + REPLICATED_WORKLOADS.len() * REPLICATED_FAULTS.len()
        );
    }

    #[test]
    fn scenario_names_are_unique() {
        let cells = full_matrix();
        let names: HashSet<String> = cells.iter().map(Scenario::name).collect();
        assert_eq!(names.len(), cells.len(), "duplicate scenario names");
    }

    #[test]
    fn every_category_is_populated() {
        let cells = full_matrix();
        for category in [
            Category::HappyPath,
            Category::Boundary,
            Category::FaultOnly,
            Category::Combined,
            Category::Byzantine,
        ] {
            assert!(
                !cells_in(&cells, category).is_empty(),
                "category {category:?} has no cells"
            );
        }
    }

    #[test]
    fn matrix_order_is_stable() {
        // The order seeds nothing by itself (each cell derives its seed
        // from its *name*), but a stable order keeps CI logs and
        // coverage tables diffable.
        let a = full_matrix();
        let b = full_matrix();
        assert_eq!(a, b);
        assert_eq!(a[0].name(), "two-domain/quiet/none");
        assert_eq!(a.last().unwrap().name(), "civ3/storm/term-storm");
    }
}
