//! Sect. 5: OASIS for multiple, mutually-aware domains.
//!
//! Run with `cargo run --example visiting_doctor`.
//!
//! "A doctor employed in a hospital may need to work for a short time in
//! a research institute … the home domain's administrative service will
//! issue an appointment certificate to the doctor. This will serve as a
//! credential for entering the role `visiting_doctor` in the research
//! institute … The research institute would check the validity of the
//! appointment certificate during role activation by callback to the
//! hospital."
//!
//! Also shown: the group-membership scenario (any paid-up member of one
//! organisation may use the other — the Tate galleries analogy), where
//! the certificate deliberately carries **no personal identity fields**.

use oasis::prelude::*;
use oasis_core::CredentialKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let federation = Federation::new();
    let hospital = Domain::new("st-marys", federation.bus().clone());
    let institute = Domain::new("crick-institute", federation.bus().clone());
    federation.register(&hospital);
    federation.register(&institute);

    // --- Home domain: the hospital's administrative service -----------------
    let admin = hospital.create_service("st-marys.admin");
    admin.set_validator(federation.validator_for("st-marys"));
    hospital.facts().define("hr_verified_md", 1)?;

    admin.define_role("hr_officer", &[("who", ValueType::Id)], true)?;
    admin.add_activation_rule(
        "hr_officer",
        vec![Term::var("W")],
        vec![Atom::env_fact("hr_verified_md", vec![Term::var("W")])],
        vec![],
    )?;
    // HR officers certify medical employment; the certificate is issued
    // "only to members of staff who can prove that they are academically
    // and professionally qualified in medicine" — modelled by the HR fact.
    admin.grant_appointer("hr_officer", "employed_as_doctor")?;

    // --- Away domain: the research institute -------------------------------
    let labs = institute.create_service("crick-institute.labs");
    labs.set_validator(federation.validator_for("crick-institute"));

    labs.define_role("guest", &[("who", ValueType::Id)], true)?;
    labs.add_activation_rule("guest", vec![Term::var("W")], vec![], vec![])?;
    labs.define_role("visiting_doctor", &[("who", ValueType::Id)], true)?;
    // The activation rule established by the SLA: the home appointment
    // certificate proves medical qualification.
    labs.add_activation_rule(
        "visiting_doctor",
        vec![Term::var("W")],
        vec![Atom::appointment_from(
            "st-marys.admin",
            "employed_as_doctor",
            vec![Term::var("W"), Term::val(Value::id("st-marys"))],
        )],
        vec![0], // revoking employment at home strips the visiting role
    )?;
    labs.add_invocation_rule(
        "use_sequencer",
        vec![],
        vec![Atom::prereq("visiting_doctor", vec![Term::Wildcard])],
    );

    // The reciprocal SLA clause (hospital ↔ institute agreement).
    federation.add_sla(
        Sla::between("crick-institute", "st-marys").accept(SlaClause {
            issuer: "st-marys.admin".into(),
            name: "employed_as_doctor".into(),
            kind: CredentialKind::Appointment,
        }),
    );

    // --- The story -----------------------------------------------------------
    hospital
        .facts()
        .insert("hr_verified_md", vec![Value::id("hr-1")])?;
    let hr = PrincipalId::new("hr-1");
    let dr = PrincipalId::new("dr-jones");
    let ctx = EnvContext::new(0);

    let hr_role = admin.activate_role(
        &hr,
        &RoleName::new("hr_officer"),
        &[Value::id("hr-1")],
        &[],
        &ctx,
    )?;
    let employment = admin.issue_appointment(
        &hr,
        &[Credential::Rmc(hr_role)],
        "employed_as_doctor",
        vec![Value::id("dr-jones"), Value::id("st-marys")],
        &dr,
        Some(10_000), // contract end date
        None,
        &ctx,
    )?;
    println!("home domain issued {employment}");

    // The doctor arrives at the institute and enters the visiting role; the
    // institute validates the certificate by callback to the hospital.
    let visiting = labs.activate_role(
        &dr,
        &RoleName::new("visiting_doctor"),
        &[Value::id("dr-jones")],
        &[Credential::Appointment(employment.clone())],
        &ctx,
    )?;
    println!("institute granted {visiting}");
    labs.invoke(
        &dr,
        "use_sequencer",
        &[],
        &[Credential::Rmc(visiting.clone())],
        &ctx,
    )?;
    println!("sequencer time booked");

    // A chancer with no home appointment gets only the guest role.
    let stranger = PrincipalId::new("somebody");
    let guest_only = labs.activate_role(
        &stranger,
        &RoleName::new("visiting_doctor"),
        &[Value::id("somebody")],
        &[],
        &ctx,
    );
    println!("stranger: {}", guest_only.unwrap_err());
    let guest = labs.activate_role(
        &stranger,
        &RoleName::new("guest"),
        &[Value::id("somebody")],
        &[],
        &ctx,
    )?;
    println!("stranger gets {guest}");

    // The hospital terminates the employment: the appointment is revoked at
    // the issuer, and the visiting role — whose membership rule retained
    // it — collapses across the domain boundary, immediately.
    admin.revoke_certificate(employment.crr.cert_id, "employment ended", 50);
    let after = labs.invoke(
        &dr,
        "use_sequencer",
        &[],
        &[Credential::Rmc(visiting)],
        &EnvContext::new(51),
    );
    println!("after employment ends: {}", after.unwrap_err());

    // --- Group membership, anonymously ------------------------------------
    // "The identity of the principal is not needed if proof of membership
    // is securely provable." The membership card certificate names the
    // organisation and period only.
    let tate_london = Domain::new("tate-london", federation.bus().clone());
    let tate_stives = Domain::new("tate-st-ives", federation.bus().clone());
    federation.register(&tate_london);
    federation.register(&tate_stives);

    let london_desk = tate_london.create_service("tate-london.desk");
    london_desk.set_validator(federation.validator_for("tate-london"));
    let stives_desk = tate_stives.create_service("tate-st-ives.desk");
    stives_desk.set_validator(federation.validator_for("tate-st-ives"));

    london_desk.define_role("registrar", &[], true)?;
    london_desk.add_activation_rule("registrar", vec![], vec![], vec![])?;
    london_desk.grant_appointer("registrar", "friend_of_the_tate")?;

    stives_desk.define_role("friend", &[], true)?;
    stives_desk.add_activation_rule(
        "friend",
        vec![],
        vec![
            Atom::appointment_from(
                "tate-london.desk",
                "friend_of_the_tate",
                // organisation and membership period — no personal details
                vec![Term::val(Value::id("tate")), Term::var("Expiry")],
            ),
            Atom::compare(Term::var("$now"), CmpOp::Le, Term::var("Expiry")),
        ],
        vec![],
    )?;
    federation.add_sla(
        Sla::between("tate-st-ives", "tate-london").accept(SlaClause {
            issuer: "tate-london.desk".into(),
            name: "friend_of_the_tate".into(),
            kind: CredentialKind::Appointment,
        }),
    );

    let registrar = PrincipalId::new("registrar-1");
    let member = PrincipalId::new("art-lover-77");
    let reg_role =
        london_desk.activate_role(&registrar, &RoleName::new("registrar"), &[], &[], &ctx)?;
    let card = london_desk.issue_appointment(
        &registrar,
        &[Credential::Rmc(reg_role)],
        "friend_of_the_tate",
        vec![Value::id("tate"), Value::Time(500)],
        &member,
        Some(500),
        None,
        &ctx,
    )?;
    let friend = stives_desk.activate_role(
        &member,
        &RoleName::new("friend"),
        &[],
        &[Credential::Appointment(card.clone())],
        &EnvContext::new(100),
    )?;
    println!("\nfriend admitted at St Ives on a London card: {friend}");
    let lapsed = stives_desk.activate_role(
        &member,
        &RoleName::new("friend"),
        &[],
        &[Credential::Appointment(card)],
        &EnvContext::new(501),
    );
    println!("after membership lapses: {}", lapsed.unwrap_err());
    Ok(())
}
