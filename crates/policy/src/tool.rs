//! The driver behind the `policyc` command-line tool: check, format, and
//! describe OASIS policy documents.
//!
//! Lives in the library (rather than the binary) so it is unit-testable;
//! the `policyc` binary is a thin wrapper.

use std::fmt::Write as _;

use crate::ast::ConditionKind;
use crate::Policy;

/// What `policyc` was asked to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolMode {
    /// Parse and semantically check; report OK or the first error.
    Check,
    /// Check, then emit the canonical pretty-printed form.
    Format,
    /// Check, then print a human-readable inventory of the policy.
    Describe,
}

impl std::str::FromStr for ToolMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "check" => Ok(ToolMode::Check),
            "format" | "fmt" => Ok(ToolMode::Format),
            "describe" => Ok(ToolMode::Describe),
            other => Err(format!(
                "unknown mode `{other}` (expected check|format|describe)"
            )),
        }
    }
}

/// The outcome of one run: process exit code plus the text to print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolOutput {
    /// 0 on success, 1 on a policy error.
    pub exit_code: i32,
    /// Text for stdout (or stderr when `exit_code != 0`).
    pub text: String,
}

/// Runs the tool over policy `source` (typically a file's contents).
pub fn run(mode: ToolMode, source: &str) -> ToolOutput {
    match Policy::parse(source) {
        Err(err) => ToolOutput {
            exit_code: 1,
            text: format!("error: {err}\n"),
        },
        Ok(policy) => match mode {
            ToolMode::Check => ToolOutput {
                exit_code: 0,
                text: format!("ok: {} service block(s)\n", policy.service_names().len()),
            },
            ToolMode::Format => ToolOutput {
                exit_code: 0,
                text: policy.to_text(),
            },
            ToolMode::Describe => ToolOutput {
                exit_code: 0,
                text: describe(&policy),
            },
        },
    }
}

/// Renders a human-readable inventory: roles, appointments, rule counts,
/// and the cross-service credential edges (which service trusts whose
/// certificates — the SLA surface an administrator must negotiate).
pub fn describe(policy: &Policy) -> String {
    let mut out = String::new();
    for block in &policy.ast().services {
        let _ = writeln!(out, "service {}", block.name);
        for role in &block.roles {
            let rules = block.rules.iter().filter(|r| r.role == role.name).count();
            let initial = if role.initial { " (initial)" } else { "" };
            let _ = writeln!(
                out,
                "  role {}/{}{} — {} rule(s)",
                role.name,
                role.params.len(),
                initial,
                rules
            );
        }
        for appt in &block.appointments {
            let issuers: Vec<&str> = block
                .appointers
                .iter()
                .filter(|g| g.appointment == appt.name)
                .map(|g| g.role.as_str())
                .collect();
            let _ = writeln!(
                out,
                "  appointment {}/{} — issued by [{}]",
                appt.name,
                appt.params.len(),
                issuers.join(", ")
            );
        }
        for inv in &block.invocations {
            let _ = writeln!(out, "  method {}/{}", inv.method, inv.head_args.len());
        }

        // Foreign-credential edges: what this service accepts from others.
        let mut edges: Vec<String> = Vec::new();
        let all_conditions = block
            .rules
            .iter()
            .flat_map(|r| r.conditions.iter())
            .chain(block.invocations.iter().flat_map(|i| i.conditions.iter()));
        for cond in all_conditions {
            match &cond.kind {
                ConditionKind::Prereq {
                    service: Some(svc),
                    role,
                    ..
                } => edges.push(format!("rmc {svc}::{role}")),
                ConditionKind::Appointment {
                    service: Some(svc),
                    name,
                    ..
                } => edges.push(format!("appointment {svc}::{name}")),
                _ => {}
            }
        }
        edges.sort();
        edges.dedup();
        for edge in edges {
            let _ = writeln!(out, "  accepts {edge}  [needs SLA]");
        }
    }
    out
}

/// Command-line entry point used by the `policyc` binary: parses argv,
/// reads the file, runs, prints, and returns the exit code.
pub fn main_with_args(args: &[String]) -> i32 {
    let (mode, path) = match args {
        [mode, path] => match mode.parse::<ToolMode>() {
            Ok(m) => (m, path),
            Err(e) => {
                eprintln!("policyc: {e}");
                return 2;
            }
        },
        _ => {
            eprintln!("usage: policyc <check|format|describe> <policy-file>");
            return 2;
        }
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("policyc: cannot read `{path}`: {e}");
            return 2;
        }
    };
    let output = run(mode, &source);
    if output.exit_code == 0 {
        print!("{}", output.text);
    } else {
        eprint!("{}", output.text);
    }
    output.exit_code
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
service hospital {
  initial role logged_in(u: id);
  role doctor(d: id);
  appointment assigned(d: id, p: id);
  appointer doctor may issue assigned;
  rule logged_in(U) <- env password_ok(U);
  rule doctor(D) <- prereq logged_in(D);
  invoke read(P) <- prereq other.svc::treating(_, P);
}
";

    #[test]
    fn check_reports_ok() {
        let out = run(ToolMode::Check, SAMPLE);
        assert_eq!(out.exit_code, 0);
        assert!(out.text.contains("ok: 1 service block(s)"));
    }

    #[test]
    fn check_reports_errors_with_position() {
        let out = run(ToolMode::Check, "service s { rule ghost() <- ; }");
        assert_eq!(out.exit_code, 1);
        assert!(out.text.contains("unknown role `ghost`"), "{}", out.text);
    }

    #[test]
    fn format_is_idempotent() {
        let once = run(ToolMode::Format, SAMPLE);
        assert_eq!(once.exit_code, 0);
        let twice = run(ToolMode::Format, &once.text);
        assert_eq!(once.text, twice.text);
    }

    #[test]
    fn describe_inventories_the_policy() {
        let out = run(ToolMode::Describe, SAMPLE);
        assert_eq!(out.exit_code, 0);
        assert!(out.text.contains("role logged_in/1 (initial) — 1 rule(s)"));
        assert!(out
            .text
            .contains("appointment assigned/2 — issued by [doctor]"));
        assert!(out.text.contains("method read/1"));
        assert!(out
            .text
            .contains("accepts rmc other.svc::treating  [needs SLA]"));
    }

    #[test]
    fn mode_parsing() {
        assert_eq!("check".parse::<ToolMode>().unwrap(), ToolMode::Check);
        assert_eq!("fmt".parse::<ToolMode>().unwrap(), ToolMode::Format);
        assert_eq!("describe".parse::<ToolMode>().unwrap(), ToolMode::Describe);
        assert!("lint".parse::<ToolMode>().is_err());
    }

    #[test]
    fn main_with_bad_args() {
        assert_eq!(main_with_args(&[]), 2);
        assert_eq!(main_with_args(&["check".into(), "/no/such/file".into()]), 2);
        assert_eq!(main_with_args(&["bogus".into(), "x".into()]), 2);
    }
}
