//! Integration: Sect. 5 — roving principals between mutually aware
//! domains (visiting doctor, reciprocal agreements, anonymity).

use oasis::prelude::*;
use oasis_core::CredentialKind;

struct World {
    federation: std::sync::Arc<Federation>,
    admin: std::sync::Arc<oasis_core::OasisService>,
    labs: std::sync::Arc<oasis_core::OasisService>,
}

fn build() -> World {
    let federation = Federation::new();
    let hospital = Domain::new("hospital", federation.bus().clone());
    let institute = Domain::new("institute", federation.bus().clone());
    federation.register(&hospital);
    federation.register(&institute);

    let admin = hospital.create_service("hospital.admin");
    admin.set_validator(federation.validator_for("hospital"));
    hospital.facts().define("is_hr", 1).unwrap();
    admin
        .define_role("hr", &[("w", ValueType::Id)], true)
        .unwrap();
    admin
        .add_activation_rule(
            "hr",
            vec![Term::var("W")],
            vec![Atom::env_fact("is_hr", vec![Term::var("W")])],
            vec![],
        )
        .unwrap();
    admin.grant_appointer("hr", "employed_as_doctor").unwrap();

    let labs = institute.create_service("institute.labs");
    labs.set_validator(federation.validator_for("institute"));
    labs.define_role("visiting_doctor", &[("w", ValueType::Id)], true)
        .unwrap();
    labs.add_activation_rule(
        "visiting_doctor",
        vec![Term::var("W")],
        vec![Atom::appointment_from(
            "hospital.admin",
            "employed_as_doctor",
            vec![Term::var("W")],
        )],
        vec![0],
    )
    .unwrap();

    federation.add_sla(Sla::between("institute", "hospital").accept(SlaClause {
        issuer: "hospital.admin".into(),
        name: "employed_as_doctor".into(),
        kind: CredentialKind::Appointment,
    }));

    World {
        federation,
        admin,
        labs,
    }
}

fn employment(
    world: &World,
    doctor: &str,
    expires: Option<u64>,
) -> oasis_core::AppointmentCertificate {
    world
        .admin
        .facts()
        .insert("is_hr", vec![Value::id("hr-1")])
        .unwrap();
    let hr = PrincipalId::new("hr-1");
    let ctx = EnvContext::new(0);
    let hr_role = world
        .admin
        .activate_role(&hr, &RoleName::new("hr"), &[Value::id("hr-1")], &[], &ctx)
        .unwrap();
    world
        .admin
        .issue_appointment(
            &hr,
            &[Credential::Rmc(hr_role)],
            "employed_as_doctor",
            vec![Value::id(doctor)],
            &PrincipalId::new(doctor),
            expires,
            None,
            &ctx,
        )
        .unwrap()
}

#[test]
fn home_appointment_opens_visiting_role() {
    let world = build();
    let cert = employment(&world, "dr-j", None);
    let rmc = world
        .labs
        .activate_role(
            &PrincipalId::new("dr-j"),
            &RoleName::new("visiting_doctor"),
            &[Value::id("dr-j")],
            &[Credential::Appointment(cert)],
            &EnvContext::new(10),
        )
        .unwrap();
    assert_eq!(rmc.role.as_str(), "visiting_doctor");
}

#[test]
fn stolen_appointment_fails_at_the_away_domain() {
    let world = build();
    let cert = employment(&world, "dr-j", None);
    // Mallory presents dr-j's certificate with their own name in the
    // parameter slot: the variable in the rule unifies args with the
    // certificate, so the role would name dr-j — and the MAC check against
    // presenter "mallory" fails during validation anyway.
    let err = world
        .labs
        .activate_role(
            &PrincipalId::new("mallory"),
            &RoleName::new("visiting_doctor"),
            &[Value::id("mallory")],
            &[Credential::Appointment(cert)],
            &EnvContext::new(10),
        )
        .unwrap_err();
    assert!(matches!(err, OasisError::ActivationDenied { .. }));
    assert_eq!(
        world
            .labs
            .audit()
            .entries_tagged("credential_rejected")
            .len(),
        1
    );
}

#[test]
fn home_revocation_strips_visiting_role_across_domains() {
    let world = build();
    let cert = employment(&world, "dr-j", None);
    let dr = PrincipalId::new("dr-j");
    let rmc = world
        .labs
        .activate_role(
            &dr,
            &RoleName::new("visiting_doctor"),
            &[Value::id("dr-j")],
            &[Credential::Appointment(cert.clone())],
            &EnvContext::new(10),
        )
        .unwrap();
    assert!(world
        .labs
        .validate_own(&Credential::Rmc(rmc.clone()), &dr, 11)
        .is_ok());

    world
        .admin
        .revoke_certificate(cert.crr.cert_id, "employment terminated", 20);
    // The visiting RMC retained the appointment; the cross-domain event
    // collapsed it.
    let err = world
        .labs
        .validate_own(&Credential::Rmc(rmc), &dr, 21)
        .unwrap_err();
    assert!(err.to_string().contains("revoked"), "{err}");
}

#[test]
fn expired_appointment_cannot_reactivate_but_active_session_lapses_lazily() {
    let world = build();
    let cert = employment(&world, "dr-j", Some(100));
    let dr = PrincipalId::new("dr-j");
    world
        .labs
        .activate_role(
            &dr,
            &RoleName::new("visiting_doctor"),
            &[Value::id("dr-j")],
            &[Credential::Appointment(cert.clone())],
            &EnvContext::new(10),
        )
        .unwrap();

    // Past expiry: a *new* activation fails — and the failed validation
    // marks the certificate expired at the issuer, which cascades to the
    // visiting role issued earlier.
    let err = world
        .labs
        .activate_role(
            &dr,
            &RoleName::new("visiting_doctor"),
            &[Value::id("dr-j")],
            &[Credential::Appointment(cert.clone())],
            &EnvContext::new(101),
        )
        .unwrap_err();
    assert!(matches!(err, OasisError::ActivationDenied { .. }));
    let record = world.admin.record(cert.crr.cert_id).unwrap();
    assert!(matches!(
        record.status,
        oasis_core::CredStatus::Expired { .. }
    ));
}

#[test]
fn reciprocal_agreement_is_separate() {
    let world = build();
    // The institute→hospital direction was never agreed; an institute
    // credential presented at the hospital is refused.
    let labs_guest = {
        world.labs.define_role("researcher", &[], true).unwrap();
        world
            .labs
            .add_activation_rule("researcher", vec![], vec![], vec![])
            .unwrap();
        world
            .labs
            .activate_role(
                &PrincipalId::new("r-1"),
                &RoleName::new("researcher"),
                &[],
                &[],
                &EnvContext::new(0),
            )
            .unwrap()
    };
    world
        .admin
        .define_role("visiting_researcher", &[], true)
        .unwrap();
    world
        .admin
        .add_activation_rule(
            "visiting_researcher",
            vec![],
            vec![Atom::prereq_at("institute.labs", "researcher", vec![])],
            vec![],
        )
        .unwrap();
    let err = world
        .admin
        .activate_role(
            &PrincipalId::new("r-1"),
            &RoleName::new("visiting_researcher"),
            &[],
            &[Credential::Rmc(labs_guest.clone())],
            &EnvContext::new(1),
        )
        .unwrap_err();
    assert!(matches!(err, OasisError::ActivationDenied { .. }));

    // Sign the reciprocal agreement; now it works.
    world
        .federation
        .add_sla(Sla::between("hospital", "institute").accept(SlaClause {
            issuer: "institute.labs".into(),
            name: "researcher".into(),
            kind: CredentialKind::Rmc,
        }));
    assert!(world
        .admin
        .activate_role(
            &PrincipalId::new("r-1"),
            &RoleName::new("visiting_researcher"),
            &[],
            &[Credential::Rmc(labs_guest)],
            &EnvContext::new(2),
        )
        .is_ok());
}
