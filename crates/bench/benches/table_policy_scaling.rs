//! TAB-P — policy expression and deployment at scale.
//!
//! Sect. 1 argues that formally expressed, automatically deployed policy
//! is "crucial for any large-scale deployment". This experiment
//! quantifies the pipeline: parse + check + compile time for generated
//! policy documents of growing size, and the cost of rule *evaluation*
//! as the number of alternative rules per role grows (the engine tries
//! rules in order).
//!
//! Reported series: pipeline time vs number of roles; activation time vs
//! number of alternative rules (the satisfied rule placed last — worst
//! case).

use std::fmt::Write as _;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oasis::prelude::*;
use oasis_bench::table_header;

/// Generates a valid policy with `roles` chained roles in one service.
fn generate_policy(roles: usize) -> String {
    let mut text = String::from("service generated {\n");
    let _ = writeln!(text, "  initial role role0(u: id);");
    for i in 1..roles {
        let _ = writeln!(text, "  role role{i}(u: id);");
    }
    let _ = writeln!(text, "  rule role0(U) <- env fact0(U);");
    for i in 1..roles {
        let _ = writeln!(
            text,
            "  rule role{i}(U) <- prereq role{}(U), env fact{i}(U);",
            i - 1
        );
    }
    for i in 0..roles {
        let _ = writeln!(text, "  invoke method{i}(U) <- prereq role{i}(U);");
    }
    text.push_str("}\n");
    text
}

fn print_pipeline_series() {
    table_header(
        "TAB-P policy pipeline",
        "parse+check+compile stays fast as policies grow (linear in document size)",
        "roles  rules  pipeline-time",
    );
    for roles in [10usize, 100, 500, 1_000] {
        let text = generate_policy(roles);
        let t0 = std::time::Instant::now();
        let policy = Policy::parse(&text).unwrap();
        let facts = Arc::new(FactStore::new());
        let service = OasisService::new(ServiceConfig::new("generated"), facts);
        policy.apply_to(&service).unwrap();
        let elapsed = t0.elapsed();
        println!("{roles:>5}  {:>5}  {elapsed:>12.2?}", roles * 2);
    }
}

/// A service whose target role has `alternatives` rules, only the last of
/// which is satisfiable.
fn alternatives_world(alternatives: usize) -> (Arc<oasis::core::OasisService>, PrincipalId) {
    let facts = Arc::new(FactStore::new());
    facts.define("open", 1).unwrap();
    facts.insert("open", vec![Value::id("alice")]).unwrap();
    for i in 0..alternatives {
        facts.define_if_absent(format!("gate{i}"), 1).unwrap();
    }
    let service = OasisService::new(ServiceConfig::new("alt"), facts);
    service
        .define_role("member", &[("u", ValueType::Id)], true)
        .unwrap();
    for i in 0..alternatives.saturating_sub(1) {
        // Unsatisfiable alternatives: empty gate relations.
        service
            .add_activation_rule(
                "member",
                vec![Term::var("U")],
                vec![Atom::env_fact(format!("gate{i}"), vec![Term::var("U")])],
                vec![0],
            )
            .unwrap();
    }
    service
        .add_activation_rule(
            "member",
            vec![Term::var("U")],
            vec![Atom::env_fact("open", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();
    (service, PrincipalId::new("alice"))
}

fn print_alternatives_series() {
    table_header(
        "TAB-P rule alternatives",
        "activation cost grows linearly with the number of alternative rules tried",
        "alternatives  activation-time",
    );
    for alts in [1usize, 4, 16, 64] {
        let (service, alice) = alternatives_world(alts);
        let ctx = EnvContext::new(0);
        let iters = 500;
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            service
                .activate_role(
                    &alice,
                    &RoleName::new("member"),
                    &[Value::id("alice")],
                    &[],
                    &ctx,
                )
                .unwrap();
        }
        println!("{alts:>12}  {:>15.2?}", t0.elapsed() / iters);
    }
}

fn bench(c: &mut Criterion) {
    print_pipeline_series();
    print_alternatives_series();

    let mut group = c.benchmark_group("tabp_policy_pipeline");
    for roles in [10usize, 100, 500] {
        let text = generate_policy(roles);
        group.bench_with_input(BenchmarkId::new("parse_check", roles), &roles, |b, _| {
            b.iter(|| Policy::parse(&text).unwrap());
        });
        let policy = Policy::parse(&text).unwrap();
        group.bench_with_input(BenchmarkId::new("compile", roles), &roles, |b, _| {
            b.iter_with_setup(
                || OasisService::new(ServiceConfig::new("generated"), Arc::new(FactStore::new())),
                |service| policy.apply_to(&service).unwrap(),
            );
        });
        group.bench_with_input(BenchmarkId::new("pretty_print", roles), &roles, |b, _| {
            b.iter(|| policy.to_text());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("tabp_rule_alternatives");
    for alts in [1usize, 16, 64] {
        let (service, alice) = alternatives_world(alts);
        let ctx = EnvContext::new(0);
        group.bench_with_input(BenchmarkId::from_parameter(alts), &alts, |b, _| {
            b.iter(|| {
                service
                    .activate_role(
                        &alice,
                        &RoleName::new("member"),
                        &[Value::id("alice")],
                        &[],
                        &ctx,
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    // Bounded measurement: several benchmarks accumulate issuer-side
    // state (credential records, audit entries) per iteration, so the
    // sampling windows are kept short to bound memory on full runs.
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
