//! A network-backed credential validator.
//!
//! The OASIS engine (`oasis-core`) is synchronous; validation callbacks
//! happen inside `activate_role`/`invoke`. When the issuer lives behind a
//! TCP socket, the callback must block on the network — which is exactly
//! what the paper's architecture expects of an "OASIS-aware service"
//! validating "via callback to the issuer" (Sect. 4). [`RemoteValidator`]
//! adapts the blocking [`WireClient`] to the
//! [`CredentialValidator`](oasis_core::CredentialValidator) trait with
//! one connection per issuer, re-dialled with capped exponential backoff
//! (the shared [`oasis_core::retry`] schedule) on transport failure.

use std::collections::HashMap;
use std::net::SocketAddr;

use parking_lot::Mutex;

use oasis_core::retry::{Backoff, RetryPolicy};
use oasis_core::{Credential, CredentialValidator, OasisError, PrincipalId, ServiceId};

use crate::client::{WireClient, WireTimeouts};
use crate::error::WireError;

/// The historical name for the synchronous client, kept for callers that
/// want to emphasise its blocking nature. [`WireClient`] *is* blocking.
pub type BlockingClient = WireClient;

/// A [`CredentialValidator`] that performs validation callbacks over TCP
/// to a directory of issuer addresses.
///
/// Connections are cached per issuer. On a transport error (broken pipe,
/// expired deadline) the connection is dropped and the call re-dialled
/// under the configured [`RetryPolicy`] — issuers restart, networks blip.
/// A *remote* answer (acceptance or rejection) is authoritative and never
/// retried. When retries are exhausted the error maps to
/// [`OasisError::IssuerTimeout`] if the last failure was a deadline
/// expiry, [`OasisError::NoValidator`] otherwise — both transient to the
/// [`ResilientValidator`](oasis_core::ResilientValidator) layered above.
///
/// Overload responses are different from transport failures: a shed
/// ([`WireError::Overloaded`]) or server-side deadline expiry
/// ([`WireError::DeadlineExceeded`]) proves the issuer is alive, so the
/// cached connection is *kept* (no re-dial) and the error surfaces
/// immediately — as [`OasisError::Overloaded`] carrying the server's
/// `retry_after_ms` hint, or [`OasisError::IssuerTimeout`]. Backing off
/// by the hint is the job of the `ResilientValidator` above, which also
/// keeps sheds out of the circuit-breaker accounting.
pub struct RemoteValidator {
    issuers: Mutex<HashMap<ServiceId, SocketAddr>>,
    connections: Mutex<HashMap<ServiceId, WireClient>>,
    timeouts: WireTimeouts,
    retry: RetryPolicy,
    deadline_ms: Option<u64>,
}

impl std::fmt::Debug for RemoteValidator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteValidator")
            .field("issuers", &self.issuers.lock().len())
            .field("timeouts", &self.timeouts)
            .finish()
    }
}

impl Default for RemoteValidator {
    fn default() -> Self {
        Self::new()
    }
}

impl RemoteValidator {
    /// Default per-call deadline budget. Generous — well past the socket
    /// read deadline, so it never fires first — but its presence marks
    /// every callback as envelope-aware, which is what lets an overloaded
    /// issuer answer with a structured `Overloaded { retry_after_ms }`
    /// instead of the legacy `Error` shape (see the
    /// [`proto` docs](crate::proto)).
    pub const DEFAULT_CALL_DEADLINE_MS: u64 = 30_000;

    /// Creates an empty directory with default socket deadlines, a single
    /// re-dial (the historical behaviour, now with a short pause before
    /// the second attempt), and the default call deadline
    /// ([`RemoteValidator::DEFAULT_CALL_DEADLINE_MS`]).
    pub fn new() -> Self {
        Self {
            issuers: Mutex::new(HashMap::new()),
            connections: Mutex::new(HashMap::new()),
            timeouts: WireTimeouts::default(),
            retry: RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            deadline_ms: Some(Self::DEFAULT_CALL_DEADLINE_MS),
        }
    }

    /// Propagates a deadline budget (ms) with every validation callback:
    /// a saturated issuer drops the callback once the budget lapses
    /// instead of answering long after the verifier stopped caring.
    #[must_use]
    pub fn with_call_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Removes the call deadline: callbacks go out as bare (pre-envelope)
    /// frames. Only useful against issuers old enough to reject the
    /// `Deadline` wrapper; note that such a *legacy-format* connection is
    /// shed with the `Error` shape, which this validator reports as
    /// [`OasisError::InvalidCredential`] rather than
    /// [`OasisError::Overloaded`].
    #[must_use]
    pub fn without_call_deadline(mut self) -> Self {
        self.deadline_ms = None;
        self
    }

    /// Replaces the socket deadlines used for new connections.
    #[must_use]
    pub fn with_timeouts(mut self, timeouts: WireTimeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// Replaces the re-dial schedule.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Registers (or updates) the network address of an issuer.
    pub fn add_issuer(&self, id: impl Into<ServiceId>, addr: SocketAddr) {
        let id = id.into();
        self.issuers.lock().insert(id.clone(), addr);
        // Any cached connection may point at a stale address.
        self.connections.lock().remove(&id);
    }

    fn try_validate(
        &self,
        issuer: &ServiceId,
        addr: SocketAddr,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), WireError> {
        let mut connections = self.connections.lock();
        let client = match connections.entry(issuer.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let mut client = WireClient::connect_with(addr, self.timeouts)?;
                client.set_deadline_ms(self.deadline_ms);
                e.insert(client)
            }
        };
        client.validate(credential, presenter, now)
    }
}

impl CredentialValidator for RemoteValidator {
    fn validate(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        let issuer = credential.issuer().clone();
        let mut backoff = Backoff::new(self.retry);
        loop {
            // Re-read the directory each attempt: a `NotLeader` hint
            // below may have repointed this issuer at the new leader.
            let Some(addr) = self.issuers.lock().get(&issuer).copied() else {
                return Err(OasisError::NoValidator(issuer));
            };
            match self.try_validate(&issuer, addr, credential, presenter, now) {
                Ok(()) => return Ok(()),
                // The issuer answered: authoritative, never retried.
                Err(WireError::Remote(reason)) => {
                    return Err(OasisError::InvalidCredential {
                        crr: credential.crr().clone(),
                        reason,
                    })
                }
                // The issuer shed the request: it is alive and the
                // connection is good — keep it, surface the hint, and let
                // the resilience layer above time the retry.
                Err(WireError::Overloaded { retry_after_ms }) => {
                    return Err(OasisError::Overloaded {
                        service: issuer,
                        retry_after_ms,
                    })
                }
                // Our propagated budget ran out server-side; same shape
                // as a local deadline expiry. The connection stays good.
                Err(WireError::DeadlineExceeded) => return Err(OasisError::IssuerTimeout(issuer)),
                // The issuer is a replicated cluster and we dialled a
                // follower: repoint the directory at the hinted leader
                // (when given) and retry under the same schedule an
                // election would need to settle anyway.
                Err(WireError::NotLeader { hint }) => {
                    self.connections.lock().remove(&issuer);
                    if let Some(leader) = hint.as_deref().and_then(crate::transport::resolve_hint) {
                        self.issuers.lock().insert(issuer.clone(), leader);
                    }
                    match backoff.next_delay() {
                        Some(delay) => {
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                        }
                        None => return Err(OasisError::NoValidator(issuer)),
                    }
                }
                Err(transport) => {
                    // Broken or deadline-expired connection: drop it and
                    // re-dial after the backoff delay, if any remain.
                    self.connections.lock().remove(&issuer);
                    match backoff.next_delay() {
                        Some(delay) => {
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                        }
                        None => {
                            return Err(if transport.is_timeout() {
                                OasisError::IssuerTimeout(issuer)
                            } else {
                                OasisError::NoValidator(issuer)
                            })
                        }
                    }
                }
            }
        }
    }
}
