//! Pretty-printer producing canonical policy text.
//!
//! `parse(print(ast)) == ast` — verified by a round-trip property test.

use std::fmt::Write;

use oasis_core::{Term, Value};

use crate::ast::*;

pub(crate) fn print(ast: &PolicyAst) -> String {
    let mut out = String::new();
    for (i, service) in ast.services.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_service(&mut out, service);
    }
    out
}

fn print_service(out: &mut String, s: &ServiceBlock) {
    let _ = writeln!(out, "service {} {{", s.name);
    for role in &s.roles {
        let initial = if role.initial { "initial " } else { "" };
        let _ = writeln!(
            out,
            "  {initial}role {}({});",
            role.name,
            params_text(&role.params)
        );
    }
    for appt in &s.appointments {
        let _ = writeln!(
            out,
            "  appointment {}({});",
            appt.name,
            params_text(&appt.params)
        );
    }
    for grant in &s.appointers {
        let _ = writeln!(
            out,
            "  appointer {} may issue {};",
            grant.role, grant.appointment
        );
    }
    for rule in &s.rules {
        let _ = write!(
            out,
            "  rule {}({}) <- {}",
            rule.role,
            terms_text(&rule.head_args),
            conditions_text(&rule.conditions)
        );
        if let Some(membership) = &rule.membership {
            let indices: Vec<String> = membership.iter().map(ToString::to_string).collect();
            let _ = write!(out, " membership [{}]", indices.join(", "));
        }
        let _ = writeln!(out, ";");
    }
    for inv in &s.invocations {
        let _ = writeln!(
            out,
            "  invoke {}({}) <- {};",
            inv.method,
            terms_text(&inv.head_args),
            conditions_text(&inv.conditions)
        );
    }
    let _ = writeln!(out, "}}");
}

fn params_text(params: &[(String, oasis_core::ValueType)]) -> String {
    params
        .iter()
        .map(|(n, t)| format!("{n}: {t}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn terms_text(terms: &[Term]) -> String {
    terms.iter().map(term_text).collect::<Vec<_>>().join(", ")
}

fn term_text(term: &Term) -> String {
    match term {
        Term::Var(v) => v.0.clone(),
        Term::Wildcard => "_".to_string(),
        Term::Const(v) => value_text(v),
    }
}

fn value_text(v: &Value) -> String {
    match v {
        Value::Id(s) => s.clone(),
        Value::Str(s) => format!("{s:?}"),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Time(t) => format!("@{t}"),
    }
}

fn conditions_text(conditions: &[Condition]) -> String {
    conditions
        .iter()
        .map(condition_text)
        .collect::<Vec<_>>()
        .join(", ")
}

fn condition_text(cond: &Condition) -> String {
    match &cond.kind {
        ConditionKind::Prereq {
            service,
            role,
            args,
        } => match service {
            Some(svc) => format!("prereq {svc}::{role}({})", terms_text(args)),
            None => format!("prereq {role}({})", terms_text(args)),
        },
        ConditionKind::Appointment {
            service,
            name,
            args,
        } => match service {
            Some(svc) => format!("appointment {svc}::{name}({})", terms_text(args)),
            None => format!("appointment {name}({})", terms_text(args)),
        },
        ConditionKind::Fact {
            relation,
            args,
            negated,
        } => {
            let not = if *negated { "not " } else { "" };
            format!("env {not}{relation}({})", terms_text(args))
        }
        ConditionKind::Compare { left, op, right } => {
            format!(
                "env {} {} {}",
                term_text(left),
                op.symbol(),
                term_text(right)
            )
        }
        ConditionKind::Predicate { name, args } => {
            format!("env ?{name}({})", terms_text(args))
        }
    }
}
