//! OASIS — a reproduction of *Access Control and Trust in the Use of
//! Widely Distributed Services* (Bacon, Moody, Yao; Middleware 2001).
//!
//! This umbrella crate re-exports the whole system; depend on it to get
//! everything, or on the individual crates for narrower builds:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`] | the OASIS model and engine: parametrised roles, Horn-clause activation rules, sessions, appointment, active security |
//! | [`events`] | the event middleware substrate: topics, channels, heartbeats |
//! | [`crypto`] | certificate MACs, issuer secret rotation, Ed25519 challenge–response |
//! | [`facts`] | the environmental predicate database |
//! | [`policy`] | the textual policy language, checker, and compiler |
//! | [`domain`] | domains, CIV replication, ECR caches, SLAs, federation |
//! | [`trust`] | audit certificates, interaction histories, risk assessment |
//! | [`sim`] | deterministic discrete-event simulation of distributed deployments |
//! | [`store`] | the durability layer: checksummed security-event journal and snapshots |
//! | [`wire`] | synchronous TCP transport for networked OASIS services |
//!
//! The repository's `examples/` directory walks through the paper's
//! scenarios (`cargo run --example quickstart`), and `crates/bench`
//! regenerates every figure-level experiment (`cargo bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use oasis_core as core;
pub use oasis_crypto as crypto;
pub use oasis_domain as domain;
pub use oasis_events as events;
pub use oasis_facts as facts;
pub use oasis_policy as policy;
pub use oasis_sim as sim;
pub use oasis_store as store;
pub use oasis_trust as trust;
pub use oasis_wire as wire;

/// The most commonly used items in one import.
///
/// ```
/// use oasis::prelude::*;
///
/// let facts = std::sync::Arc::new(FactStore::new());
/// let service = OasisService::new(ServiceConfig::new("demo"), facts);
/// assert_eq!(service.id().as_str(), "demo");
/// ```
pub mod prelude {
    pub use oasis_core::{
        Atom, CertEvent, CmpOp, CredStatus, Credential, CredentialValidator, Crr, EnvContext,
        LocalRegistry, OasisError, OasisService, PrincipalId, RoleName, ServiceConfig, ServiceId,
        Session, Term, Value, ValueType,
    };
    pub use oasis_domain::{Domain, EcrProxy, Federation, Sla, SlaClause};
    pub use oasis_events::EventBus;
    pub use oasis_facts::FactStore;
    pub use oasis_policy::Policy;
}
