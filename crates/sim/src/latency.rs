//! Link latency models.

use rand::Rng;
use rand::RngCore;

/// A latency distribution, sampled per message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Latency {
    /// Every message takes exactly this long.
    Constant(u64),
    /// Uniformly distributed in `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum latency.
        lo: u64,
        /// Maximum latency.
        hi: u64,
    },
    /// Mostly `base`, but a fraction `spike_prob` of messages take
    /// `spike` instead (tail latency).
    Spiky {
        /// Common-case latency.
        base: u64,
        /// Tail latency.
        spike: u64,
        /// Probability of hitting the tail, in `[0, 1]`.
        spike_prob: f64,
    },
}

impl Latency {
    /// A LAN-like profile (sub-millisecond scale, ticks ≈ 100 µs).
    pub fn lan() -> Self {
        Latency::Uniform { lo: 1, hi: 5 }
    }

    /// A WAN-like profile (tens of milliseconds, ticks ≈ 100 µs).
    pub fn wan() -> Self {
        Latency::Spiky {
            base: 300,
            spike: 2_000,
            spike_prob: 0.01,
        }
    }

    /// Samples one delay.
    pub fn sample(&self, rng: &mut impl RngCore) -> u64 {
        match *self {
            Latency::Constant(c) => c,
            Latency::Uniform { lo, hi } => {
                if lo >= hi {
                    lo
                } else {
                    rng.random_range(lo..=hi)
                }
            }
            Latency::Spiky {
                base,
                spike,
                spike_prob,
            } => {
                if rng.random_bool(spike_prob.clamp(0.0, 1.0)) {
                    spike
                } else {
                    base
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn constant_is_constant() {
        let mut r = rng();
        assert!((0..100).all(|_| Latency::Constant(7).sample(&mut r) == 7));
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = rng();
        let l = Latency::Uniform { lo: 3, hi: 9 };
        let samples: Vec<u64> = (0..1000).map(|_| l.sample(&mut r)).collect();
        assert!(samples.iter().all(|&s| (3..=9).contains(&s)));
        // All values appear over 1000 draws.
        for v in 3..=9 {
            assert!(samples.contains(&v), "missing {v}");
        }
    }

    #[test]
    fn degenerate_uniform() {
        let mut r = rng();
        assert_eq!(Latency::Uniform { lo: 5, hi: 5 }.sample(&mut r), 5);
    }

    #[test]
    fn spiky_mixes_base_and_spike() {
        let mut r = rng();
        let l = Latency::Spiky {
            base: 10,
            spike: 1000,
            spike_prob: 0.2,
        };
        let samples: Vec<u64> = (0..2000).map(|_| l.sample(&mut r)).collect();
        let spikes = samples.iter().filter(|&&s| s == 1000).count();
        assert!(samples.iter().all(|&s| s == 10 || s == 1000));
        // 20% ± generous tolerance.
        assert!((200..=600).contains(&spikes), "spikes = {spikes}");
    }

    #[test]
    fn presets_are_sane() {
        let mut r = rng();
        assert!(Latency::lan().sample(&mut r) <= 5);
        let wan = Latency::wan();
        assert!(wan.sample(&mut r) >= 300);
    }
}
