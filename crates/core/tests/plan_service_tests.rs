//! Service-level behaviour of the compiled decision plans: engine
//! selection and parity through the public API, epoch-skipped
//! membership sweeps, the prerequisite-role DAG, targeted re-checks,
//! and plan statistics.

use std::sync::Arc;

use oasis_core::{
    Atom, CmpOp, CredStatus, Credential, EnvContext, OasisService, PrincipalId, RoleName,
    ServiceConfig, Term, Value, ValueType,
};
use oasis_facts::FactStore;

fn role(s: &str) -> RoleName {
    RoleName::new(s)
}

/// A world with a credential join under a comparison guard — the shape
/// the plan compiler reorders — buildable on either engine.
fn join_world(interpreted: bool) -> (Arc<OasisService>, PrincipalId) {
    let facts = FactStore::new();
    facts.define("registered", 2).unwrap();
    facts
        .insert("registered", vec![Value::id("d1"), Value::id("alice")])
        .unwrap();
    let config = if interpreted {
        ServiceConfig::new("ward").with_interpreted_solver()
    } else {
        ServiceConfig::new("ward")
    };
    let svc = OasisService::new(config, Arc::new(facts));
    svc.define_role("doctor", &[("d", ValueType::Id)], true)
        .unwrap();
    svc.add_activation_rule("doctor", vec![Term::var("D")], vec![], vec![])
        .unwrap();
    svc.define_role("patient", &[("p", ValueType::Id)], false)
        .unwrap();
    svc.add_activation_rule(
        "patient",
        vec![Term::var("P")],
        vec![
            Atom::prereq("doctor", vec![Term::var("D")]),
            Atom::env_fact("registered", vec![Term::var("D"), Term::var("P")]),
            Atom::compare(Term::var("$now"), CmpOp::Lt, Term::val(Value::Time(100))),
        ],
        vec![0, 1],
    )
    .unwrap();
    svc.add_invocation_rule(
        "read",
        vec![Term::var("P")],
        vec![Atom::prereq("patient", vec![Term::var("P")])],
    );
    (svc, PrincipalId::new("alice"))
}

/// The compiled and interpreted engines must agree through the public
/// API: same grants, same denials, same RMC contents, same invocation
/// outcomes.
#[test]
fn service_level_parity_between_engines() {
    let mut outcomes = Vec::new();
    for interpreted in [false, true] {
        let (svc, alice) = join_world(interpreted);
        let ctx = EnvContext::new(10);
        let doctor = svc
            .activate_role(&alice, &role("doctor"), &[Value::id("d1")], &[], &ctx)
            .unwrap();
        let presented = vec![Credential::Rmc(doctor)];

        let patient = svc
            .activate_role(
                &alice,
                &role("patient"),
                &[Value::id("alice")],
                &presented,
                &ctx,
            )
            .unwrap();
        assert_eq!(patient.role, role("patient"));

        // Denied: no registration row for bob.
        let denied = svc.activate_role(
            &alice,
            &role("patient"),
            &[Value::id("bob")],
            &presented,
            &ctx,
        );
        // Denied: the $now guard fails after the window closes.
        let expired = svc.activate_role(
            &alice,
            &role("patient"),
            &[Value::id("alice")],
            &presented,
            &EnvContext::new(200),
        );
        let invoked = svc
            .invoke(
                &alice,
                "read",
                &[Value::id("alice")],
                &[Credential::Rmc(patient.clone())],
                &ctx,
            )
            .is_ok();
        outcomes.push((
            patient.role.clone(),
            patient.args.clone(),
            denied.is_err(),
            expired.is_err(),
            invoked,
        ));
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert!(outcomes[0].2 && outcomes[0].3 && outcomes[0].4);
}

/// An unchanged fact epoch lets the sweep skip fact-only checks — but
/// time-sensitive checks still run, and a fact change re-arms the full
/// sweep.
#[test]
fn epoch_skip_spares_fact_only_checks_but_not_timed_ones() {
    let facts = Arc::new(FactStore::new());
    facts.define("registered", 1).unwrap();
    facts.insert("registered", vec![Value::id("u")]).unwrap();
    let svc = OasisService::new(ServiceConfig::new("sweep"), Arc::clone(&facts));
    let u = PrincipalId::new("u");
    for (name, timed) in [("member", false), ("timed", true)] {
        svc.define_role(name, &[("u", ValueType::Id)], true)
            .unwrap();
        let mut conditions = vec![Atom::env_fact("registered", vec![Term::var("U")])];
        let mut membership = vec![0];
        if timed {
            conditions.push(Atom::compare(
                Term::var("$now"),
                CmpOp::Lt,
                Term::val(Value::Time(100)),
            ));
            membership.push(1);
        }
        svc.add_activation_rule(name, vec![Term::var("U")], conditions, membership)
            .unwrap();
    }
    let ctx = EnvContext::new(0);
    let member = svc
        .activate_role(&u, &role("member"), &[Value::id("u")], &[], &ctx)
        .unwrap();
    let timed = svc
        .activate_role(&u, &role("timed"), &[Value::id("u")], &[], &ctx)
        .unwrap();

    // First sweep establishes the epoch watermark; the second runs at
    // the same epoch (fact-only checks skipped) — nothing may be
    // revoked either way while both checks hold.
    assert!(svc.recheck_memberships(&EnvContext::new(10)).is_empty());
    assert!(svc.recheck_memberships(&EnvContext::new(20)).is_empty());

    // Still the same epoch, but the window has closed: the timed check
    // must be evaluated despite the skip, the fact-only one spared.
    let revoked = svc.recheck_memberships(&EnvContext::new(150));
    assert_eq!(revoked, vec![timed.crr.clone()]);
    assert!(matches!(
        svc.record(member.crr.cert_id).unwrap().status,
        CredStatus::Active
    ));
}

/// `role_dependents` walks the local prerequisite DAG transitively.
#[test]
fn role_dependents_follow_the_prereq_dag() {
    let svc = OasisService::new(ServiceConfig::new("dag"), Arc::new(FactStore::new()));
    for name in ["base", "mid", "leaf", "other"] {
        svc.define_role(name, &[], name == "base" || name == "other")
            .unwrap();
    }
    svc.add_activation_rule("base", vec![], vec![], vec![])
        .unwrap();
    svc.add_activation_rule("other", vec![], vec![], vec![])
        .unwrap();
    svc.add_activation_rule("mid", vec![], vec![Atom::prereq("base", vec![])], vec![0])
        .unwrap();
    svc.add_activation_rule("leaf", vec![], vec![Atom::prereq("mid", vec![])], vec![0])
        .unwrap();

    assert_eq!(
        svc.role_dependents(&role("base")),
        vec![role("leaf"), role("mid")]
    );
    assert_eq!(svc.role_dependents(&role("mid")), vec![role("leaf")]);
    assert!(svc.role_dependents(&role("other")).is_empty());
}

/// A targeted re-check sweeps only the named roles (plus transitive
/// dependents); everything else keeps its grant until a full sweep.
#[test]
fn targeted_recheck_touches_only_dependent_roles() {
    let svc = OasisService::new(ServiceConfig::new("targeted"), Arc::new(FactStore::new()));
    let u = PrincipalId::new("u");
    for name in ["shift_a", "shift_b"] {
        svc.define_role(name, &[], true).unwrap();
        svc.add_activation_rule(
            name,
            vec![],
            vec![Atom::compare(
                Term::var("$now"),
                CmpOp::Lt,
                Term::val(Value::Time(100)),
            )],
            vec![0],
        )
        .unwrap();
    }
    let ctx = EnvContext::new(0);
    let a = svc
        .activate_role(&u, &role("shift_a"), &[], &[], &ctx)
        .unwrap();
    let b = svc
        .activate_role(&u, &role("shift_b"), &[], &[], &ctx)
        .unwrap();

    // Both windows are closed, but only shift_a is swept.
    let late = EnvContext::new(150);
    assert_eq!(
        svc.recheck_role_memberships(&[role("shift_a")], &late),
        vec![a.crr.clone()]
    );
    assert!(matches!(
        svc.record(b.crr.cert_id).unwrap().status,
        CredStatus::Active
    ));
    // The full sweep still catches the rest.
    assert_eq!(svc.recheck_memberships(&late), vec![b.crr.clone()]);
}

/// Plan statistics reflect compile-time analysis across the table.
#[test]
fn plan_stats_count_compile_time_analysis() {
    let facts = FactStore::new();
    facts.define("open", 1).unwrap();
    let svc = OasisService::new(ServiceConfig::new("stats"), Arc::new(facts));
    svc.define_role("r", &[("u", ValueType::Id)], true).unwrap();
    // Ground, fact-only.
    svc.add_activation_rule(
        "r",
        vec![Term::var("U")],
        vec![Atom::env_fact("open", vec![Term::var("U")])],
        vec![0],
    )
    .unwrap();
    // Provably unsatisfiable: a false constant comparison.
    svc.add_activation_rule(
        "r",
        vec![Term::var("U")],
        vec![Atom::compare(
            Term::val(Value::Int(2)),
            CmpOp::Lt,
            Term::val(Value::Int(1)),
        )],
        vec![],
    )
    .unwrap();
    // Time-sensitive and reordered: the guard hoists past the join.
    svc.add_activation_rule(
        "r",
        vec![Term::var("U")],
        vec![
            Atom::prereq("q", vec![Term::var("X")]),
            Atom::compare(Term::var("$now"), CmpOp::Lt, Term::val(Value::Time(5))),
        ],
        vec![0],
    )
    .unwrap();

    let stats = svc.plan_stats();
    assert_eq!(stats.total, 3);
    assert_eq!(stats.always_fail, 1);
    assert_eq!(stats.reordered, 1);
    // The fact-only rule reads only head slots; the folded always-fail
    // rule keeps no steps at all, which is vacuously ground.
    assert_eq!(stats.ground, 2);
    // Only the $now-guarded rule: the false constant comparison was
    // folded into `always_fail`, not kept as a runtime step.
    assert_eq!(stats.time_sensitive, 1);
}
